package tree

import (
	"math/rand"
	"testing"
)

func TestRootCutValid(t *testing.T) {
	for _, w := range []int{2, 4, 64} {
		if err := RootCut().Validate(w); err != nil {
			t.Errorf("root cut invalid for w=%d: %v", w, err)
		}
	}
}

func TestLeafCutValid(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		cut := LeafCut(w)
		if err := cut.Validate(w); err != nil {
			t.Errorf("leaf cut invalid for w=%d: %v", w, err)
		}
		// All members are at the max level, and there are phi(maxLevel).
		want := Phi(MaxLevel(w))
		if int64(len(cut)) != want {
			t.Errorf("leaf cut for w=%d has %d members, want %d", w, len(cut), want)
		}
	}
}

func TestUniformCutValid(t *testing.T) {
	w := 32
	for l := 0; l <= MaxLevel(w); l++ {
		cut, err := UniformCut(w, l)
		if err != nil {
			t.Fatal(err)
		}
		if err := cut.Validate(w); err != nil {
			t.Errorf("uniform cut level %d invalid: %v", l, err)
		}
		if int64(len(cut)) != Phi(l) {
			t.Errorf("uniform cut level %d has %d members, want %d", l, len(cut), Phi(l))
		}
	}
	if _, err := UniformCut(w, MaxLevel(w)+1); err == nil {
		t.Error("UniformCut accepted a level below the leaves")
	}
	if _, err := UniformCut(w, -1); err == nil {
		t.Error("UniformCut accepted a negative level")
	}
}

func TestRandomCutsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		w := 4 << rng.Intn(4) // 4..32
		cut := RandomCut(w, rng.Float64(), rng)
		if err := cut.Validate(w); err != nil {
			t.Fatalf("random cut invalid (w=%d): %v", w, err)
		}
	}
}

func TestValidateRejectsBadCuts(t *testing.T) {
	w := 8
	tests := []struct {
		name string
		cut  Cut
	}{
		{"empty", Cut{}},
		{"missing subtree", Cut{"0": true}},
		{"overlap", Cut{"": true, "0": true}},
		{"ancestor-descendant", Cut{"0": true, "00": true, "01": true, "02": true, "03": true, "04": true, "05": true, "1": true, "2": true, "3": true, "4": true, "5": true}},
		{"below leaves", Cut{"000": true}},
		{"bogus path", Cut{"7": true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cut.Validate(w); err == nil {
				t.Fatalf("cut %v should be invalid", tt.cut)
			}
		})
	}
}

func TestCutMember(t *testing.T) {
	cut := Cut{"0": true, "1": true, "2": true, "3": true, "4": true, "5": true}
	if m, ok := cut.Member("021"); !ok || m != "0" {
		t.Fatalf("Member(021) = %q, %v", m, ok)
	}
	if m, ok := cut.Member("3"); !ok || m != "3" {
		t.Fatalf("Member(3) = %q, %v", m, ok)
	}
	if _, ok := RootCut().Member("15"); !ok {
		t.Fatal("root cut should cover everything")
	}
	if _, ok := (Cut{"00": true}).Member("1"); ok {
		t.Fatal("unrelated path should not resolve")
	}
}

func TestCutPathsSorted(t *testing.T) {
	cut := Cut{"5": true, "0": true, "31": true}
	paths := cut.Paths()
	for i := 1; i < len(paths); i++ {
		if paths[i-1] >= paths[i] {
			t.Fatalf("paths not sorted: %v", paths)
		}
	}
}

func TestCutCloneIndependent(t *testing.T) {
	cut := RootCut()
	clone := cut.Clone()
	delete(clone, "")
	if !cut[""] {
		t.Fatal("clone shares storage with original")
	}
}

func TestCutComponentsResolve(t *testing.T) {
	w := 8
	cut, err := UniformCut(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := cut.Components(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 6 {
		t.Fatalf("got %d components, want 6", len(comps))
	}
	for _, c := range comps {
		if c.Width != 4 {
			t.Fatalf("component %v width = %d, want 4", c, c.Width)
		}
	}
}

func TestCutLevels(t *testing.T) {
	cut := Cut{"": true}
	if ls := cut.Levels(); len(ls) != 1 || ls[0] != 0 {
		t.Fatalf("levels = %v", ls)
	}
}
