// Package baseline implements the comparison systems the paper positions
// itself against:
//
//   - Central: a conventional centralized counter on a single overlay node
//     (the "centralized low parallelism implementation" of Section 2).
//   - Static: the balancer-per-object implementation of Section 2 — every
//     balancer of BITONIC[w] is a separate DHT object, so the object count
//     is w*log(w)*(log(w)+1)/4 regardless of the system size.
//   - DiffractingTree: the tree-of-balancers counter of Shavit & Zemach
//     (Section 1.3 related work), with leaf counters; implemented without
//     the shared-memory prism (the message-passing setting has no
//     contended root to diffract around, which is the paper's point).
//
// All three meter overlay hops the same way internal/core does, so the E15
// and E20 comparisons are apples-to-apples.
package baseline

import (
	"fmt"
	"sync"

	"repro/internal/balancer"
	"repro/internal/bitonic"
	"repro/internal/chord"
)

// Central is a single counter object placed on one overlay node.
type Central struct {
	host chord.NodeID

	mu    sync.Mutex
	count uint64
	hops  uint64
}

// NewCentral places a counter object on the owner of its name.
func NewCentral(ring *chord.Ring, name string) (*Central, error) {
	host, err := ring.Owner(name)
	if err != nil {
		return nil, err
	}
	return &Central{host: host}, nil
}

// Next returns the next counter value. The client pays one overlay
// round-trip to the counter's host (its address is cached after the first
// lookup, as in Section 3.5's cost model).
func (c *Central) Next() (value uint64, hops int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	value = c.count
	c.count++
	c.hops++
	return value, 1
}

// Hops returns the total overlay hops spent.
func (c *Central) Hops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hops
}

// Host returns the node holding the counter (the bottleneck).
func (c *Central) Host() chord.NodeID { return c.host }

// Static is the balancer-per-object bitonic network of Section 2: every
// balancer is an independent DHT object on node h(name).
type Static struct {
	w    int
	net  *balancer.Network
	host [][]chord.NodeID // host[layer][wire] of the comparator touching wire

	mu   sync.Mutex
	out  []uint64
	hops uint64
}

// NewStatic builds the width-w balancer-per-object network over the ring.
func NewStatic(ring *chord.Ring, w int) (*Static, error) {
	net, err := bitonic.New(w)
	if err != nil {
		return nil, err
	}
	s := &Static{w: w, net: net, out: make([]uint64, w)}
	s.host = make([][]chord.NodeID, len(net.Layers))
	for li, layer := range net.Layers {
		row := make([]chord.NodeID, w)
		for _, cmp := range layer {
			name := fmt.Sprintf("bal@%d/%d", li, cmp.Top)
			h, err := ring.Owner(name)
			if err != nil {
				return nil, err
			}
			row[cmp.Top], row[cmp.Bottom] = h, h
		}
		s.host[li] = row
	}
	return s, nil
}

// Objects returns the number of balancer objects: w*log(w)*(log(w)+1)/4.
func (s *Static) Objects() int { return s.net.Size() }

// Depth returns the number of balancer layers.
func (s *Static) Depth() int { return s.net.Depth() }

// Next injects a token on input wire in and returns its counter value and
// the overlay hops spent: one hop per balancer-to-balancer forwarding
// (addresses cached), counted only when the hosting node changes.
func (s *Static) Next(in int) (value uint64, hops int, err error) {
	if in < 0 || in >= s.w {
		return 0, 0, fmt.Errorf("baseline: input wire %d out of range [0,%d)", in, s.w)
	}
	// Count host transitions along the path before traversing (the path is
	// determined by toggles, so walk and traverse together).
	var prev chord.NodeID
	first := true
	wire := in
	for li := range s.net.Layers {
		if !s.net.HasComparator(li, wire) {
			continue
		}
		h := s.host[li][wire]
		if first || h != prev {
			hops++
		}
		prev, first = h, false
		wire = s.net.WireAfter(li, wire)
	}
	s.mu.Lock()
	value = s.out[wire]*uint64(s.w) + uint64(wire)
	s.out[wire]++
	s.hops += uint64(hops)
	s.mu.Unlock()
	return value, hops, nil
}

// Out returns the per-output-wire emission counts.
func (s *Static) Out() balancer.Seq {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(balancer.Seq, s.w)
	for i, v := range s.out {
		out[i] = int64(v)
	}
	return out
}

// Hops returns the total overlay hops spent.
func (s *Static) Hops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hops
}

// ObjectsPerNode returns how many balancer objects each node hosts.
func (s *Static) ObjectsPerNode() map[chord.NodeID]int {
	counts := make(map[chord.NodeID]int)
	for li, layer := range s.net.Layers {
		for _, cmp := range layer {
			counts[s.host[li][cmp.Top]]++
		}
	}
	return counts
}

// DiffractingTree is a counting tree: a binary tree of balancers whose
// leaves hold counters returning leaf + leaves*visits.
type DiffractingTree struct {
	depth int

	mu      sync.Mutex
	toggles []uint64 // heap-indexed internal nodes, 1-based
	visits  []uint64 // per leaf
	hops    uint64
}

// NewDiffractingTree builds a tree with 2^depth leaf counters.
func NewDiffractingTree(depth int) (*DiffractingTree, error) {
	if depth < 0 || depth > 30 {
		return nil, fmt.Errorf("baseline: tree depth %d out of range [0,30]", depth)
	}
	return &DiffractingTree{
		depth:   depth,
		toggles: make([]uint64, 1<<uint(depth)),
		visits:  make([]uint64, 1<<uint(depth)),
	}, nil
}

// Leaves returns the number of leaf counters.
func (d *DiffractingTree) Leaves() int { return 1 << uint(d.depth) }

// Next returns the next counter value; the token pays one overlay hop per
// tree level plus one for the leaf counter.
func (d *DiffractingTree) Next() (value uint64, hops int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	node := 1
	logical := 0 // bit-reversed leaf index: consecutive tokens hit 0,1,2,...
	for level := 0; level < d.depth; level++ {
		t := d.toggles[node]
		d.toggles[node]++
		bit := int(t % 2)
		node = node*2 + bit
		logical |= bit << uint(level)
		hops++
	}
	value = d.visits[logical]*uint64(d.Leaves()) + uint64(logical)
	d.visits[logical]++
	hops++
	d.hops += uint64(hops)
	return value, hops
}

// Visits returns the per-leaf token counts.
func (d *DiffractingTree) Visits() balancer.Seq {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(balancer.Seq, len(d.visits))
	for i, v := range d.visits {
		out[i] = int64(v)
	}
	return out
}

// Hops returns the total overlay hops spent.
func (d *DiffractingTree) Hops() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hops
}
