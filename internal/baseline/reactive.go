package baseline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ReactiveTree is a reactive diffracting tree in the spirit of
// Della-Libera & Shavit (Section 1.3 of the paper's related work): a
// counting tree whose leaves unfold into subtrees when their recent load is
// high and fold back when it is low. It adapts to *load*, whereas the
// adaptive counting network adapts to *system size* — the E22 experiment
// contrasts the two. The tree may be uneven; a leaf at depth d with
// bit-reversed index r issues the values r, r+2^d, r+2*2^d, ...
// (fold/unfold transfers state exactly, so the emitted value sequence is
// gap-free across reconfigurations).
type ReactiveTree struct {
	unfoldAt uint64 // window load at which a leaf unfolds
	foldAt   uint64 // combined window load at which a sibling pair folds
	maxDepth int

	mu    sync.Mutex
	nodes map[string]*rtNode // key: bit path from the root ("" = root)
}

// rtNode is a tree position: internal nodes hold a toggle, leaves hold the
// issued-value count and the current load window.
type rtNode struct {
	leaf   bool
	toggle uint64 // internal: next child (bit 0 = left)
	visits uint64 // leaf: values issued
	window uint64 // leaf: tokens since the last React
}

// NewReactiveTree creates a tree that starts as a single counter and
// unfolds a leaf whose per-window load reaches unfoldAt, folding sibling
// pairs whose combined window load drops below foldAt. maxDepth caps the
// unfolding.
func NewReactiveTree(unfoldAt, foldAt uint64, maxDepth int) (*ReactiveTree, error) {
	if unfoldAt == 0 || foldAt >= unfoldAt {
		return nil, fmt.Errorf("baseline: need 0 <= foldAt < unfoldAt, got %d/%d", foldAt, unfoldAt)
	}
	if maxDepth < 0 || maxDepth > 30 {
		return nil, fmt.Errorf("baseline: maxDepth %d out of range [0,30]", maxDepth)
	}
	return &ReactiveTree{
		unfoldAt: unfoldAt,
		foldAt:   foldAt,
		maxDepth: maxDepth,
		nodes:    map[string]*rtNode{"": {leaf: true}},
	}, nil
}

// Next issues the next counter value; hops is the number of tree levels
// traversed plus one for the leaf.
func (r *ReactiveTree) Next() (value uint64, hops int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	path := ""
	for {
		n := r.nodes[path]
		hops++
		if n.leaf {
			d := len(path)
			value = n.visits<<uint(d) + reversedBits(path)
			n.visits++
			n.window++
			return value, hops
		}
		bit := byte('0' + n.toggle%2)
		n.toggle++
		path += string(bit)
	}
}

// React applies one reactive adjustment pass over the load window and
// resets it. It returns the number of unfolds and folds performed.
func (r *ReactiveTree) React() (unfolds, folds int) {
	r.mu.Lock()
	defer r.mu.Unlock()

	paths := make([]string, 0, len(r.nodes))
	for p, n := range r.nodes {
		if n.leaf {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	// Unfold hot leaves. Children created here have no load history yet,
	// so they are exempt from folding until the next pass.
	fresh := make(map[string]bool)
	for _, p := range paths {
		n := r.nodes[p]
		if !n.leaf || n.window < r.unfoldAt || len(p) >= r.maxDepth {
			continue
		}
		// Tokens alternate to the children; transfer state exactly.
		left := &rtNode{leaf: true, visits: (n.visits + 1) / 2}
		right := &rtNode{leaf: true, visits: n.visits / 2}
		n.leaf = false
		n.toggle = n.visits % 2
		n.visits, n.window = 0, 0
		r.nodes[p+"0"] = left
		r.nodes[p+"1"] = right
		fresh[p+"0"], fresh[p+"1"] = true, true
		unfolds++
	}

	// Fold cold sibling pairs (deepest first so folding can cascade on
	// later passes).
	paths = paths[:0]
	for p, n := range r.nodes {
		if n.leaf && strings.HasSuffix(p, "0") && !fresh[p] {
			paths = append(paths, p)
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) > len(paths[j])
		}
		return paths[i] < paths[j]
	})
	for _, p := range paths {
		left := r.nodes[p]
		parentPath := p[:len(p)-1]
		right := r.nodes[parentPath+"1"]
		if left == nil || right == nil || !left.leaf || !right.leaf || fresh[parentPath+"1"] {
			continue
		}
		if left.window+right.window >= r.foldAt {
			continue
		}
		parent := r.nodes[parentPath]
		parent.leaf = true
		parent.visits = left.visits + right.visits
		parent.window = 0
		parent.toggle = 0
		delete(r.nodes, p)
		delete(r.nodes, parentPath+"1")
		folds++
	}

	// Reset remaining windows.
	for _, n := range r.nodes {
		if n.leaf {
			n.window = 0
		}
	}
	return unfolds, folds
}

// Leaves returns the current number of leaf counters.
func (r *ReactiveTree) Leaves() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	count := 0
	for _, n := range r.nodes {
		if n.leaf {
			count++
		}
	}
	return count
}

// Depths returns the sorted multiset of leaf depths.
func (r *ReactiveTree) Depths() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for p, n := range r.nodes {
		if n.leaf {
			out = append(out, len(p))
		}
	}
	sort.Ints(out)
	return out
}

// reversedBits interprets the path's bits LSB-first (the counting-tree
// leaf order: consecutive tokens visit leaves 0, 1, 2, ... of the full
// binary tree restricted to the current leaves).
func reversedBits(path string) uint64 {
	var r uint64
	for i := 0; i < len(path); i++ {
		if path[i] == '1' {
			r |= 1 << uint(i)
		}
	}
	return r
}
