package baseline

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/chord"
)

func TestCentralCounts(t *testing.T) {
	ring := chord.NewRing(1)
	ring.JoinN(8)
	c, err := NewCentral(ring, "counter")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		v, hops := c.Next()
		if v != i {
			t.Fatalf("value = %d, want %d", v, i)
		}
		if hops != 1 {
			t.Fatalf("hops = %d, want 1", hops)
		}
	}
	if c.Hops() != 20 {
		t.Fatalf("total hops = %d, want 20", c.Hops())
	}
	if !ring.Contains(c.Host()) {
		t.Fatal("host not a ring member")
	}
}

func TestCentralEmptyRing(t *testing.T) {
	if _, err := NewCentral(chord.NewRing(2), "x"); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestCentralConcurrentUnique(t *testing.T) {
	ring := chord.NewRing(3)
	ring.JoinN(4)
	c, err := NewCentral(ring, "ctr")
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 500
	seen := make([]map[uint64]bool, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		seen[g] = make(map[uint64]bool, per)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v, _ := c.Next()
				seen[g][v] = true
			}
		}(g)
	}
	wg.Wait()
	all := make(map[uint64]bool, workers*per)
	for _, m := range seen {
		for v := range m {
			if all[v] {
				t.Fatalf("duplicate counter value %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != workers*per {
		t.Fatalf("got %d distinct values, want %d", len(all), workers*per)
	}
}

func TestStaticShape(t *testing.T) {
	ring := chord.NewRing(4)
	ring.JoinN(16)
	s, err := NewStatic(ring, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Objects() != 80 { // 16*4*5/4
		t.Fatalf("objects = %d, want 80", s.Objects())
	}
	if s.Depth() != 10 {
		t.Fatalf("depth = %d, want 10", s.Depth())
	}
	perNode := s.ObjectsPerNode()
	total := 0
	for _, k := range perNode {
		total += k
	}
	if total != 80 {
		t.Fatalf("per-node objects sum to %d, want 80", total)
	}
}

func TestStaticCounts(t *testing.T) {
	ring := chord.NewRing(5)
	ring.JoinN(32)
	w := 8
	s, err := NewStatic(ring, w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5*w; i++ {
		v, hops, err := s.Next(rng.Intn(w))
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i) {
			t.Fatalf("token %d got value %d", i, v)
		}
		if hops < 1 || hops > s.Depth() {
			t.Fatalf("hops = %d outside [1,%d]", hops, s.Depth())
		}
	}
	if !s.Out().HasStep() {
		t.Fatalf("static output %v not step", s.Out())
	}
	if s.Hops() == 0 {
		t.Fatal("no hops recorded")
	}
	if _, _, err := s.Next(-1); err == nil {
		t.Fatal("bad wire accepted")
	}
}

func TestDiffractingTreeCounts(t *testing.T) {
	d, err := NewDiffractingTree(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Leaves() != 8 {
		t.Fatalf("leaves = %d, want 8", d.Leaves())
	}
	for i := uint64(0); i < 40; i++ {
		v, hops := d.Next()
		if v != i {
			t.Fatalf("value = %d, want %d", v, i)
		}
		if hops != 4 { // 3 levels + leaf
			t.Fatalf("hops = %d, want 4", hops)
		}
	}
	if !d.Visits().HasStep() {
		t.Fatalf("leaf visits %v not step", d.Visits())
	}
	if d.Hops() != 160 {
		t.Fatalf("total hops = %d, want 160", d.Hops())
	}
}

func TestDiffractingTreeValidation(t *testing.T) {
	if _, err := NewDiffractingTree(-1); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := NewDiffractingTree(31); err == nil {
		t.Fatal("huge depth accepted")
	}
	d, err := NewDiffractingTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if v, hops := d.Next(); v != 0 || hops != 1 {
		t.Fatalf("depth-0 tree: v=%d hops=%d", v, hops)
	}
}

func TestReactiveTreeValidation(t *testing.T) {
	if _, err := NewReactiveTree(0, 0, 4); err == nil {
		t.Fatal("zero unfold threshold accepted")
	}
	if _, err := NewReactiveTree(4, 8, 4); err == nil {
		t.Fatal("foldAt >= unfoldAt accepted")
	}
	if _, err := NewReactiveTree(8, 2, 31); err == nil {
		t.Fatal("huge depth accepted")
	}
}

func TestReactiveTreeCountsWithoutReconfig(t *testing.T) {
	r, err := NewReactiveTree(1<<30, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		v, hops := r.Next()
		if v != i {
			t.Fatalf("value = %d, want %d", v, i)
		}
		if hops != 1 {
			t.Fatalf("hops = %d, want 1 (never unfolded)", hops)
		}
	}
}

// TestReactiveTreeValueSequenceAcrossReconfig: unfold and fold transfer
// state exactly, so the issued values stay 0,1,2,... through arbitrary
// reconfigurations.
func TestReactiveTreeValueSequenceAcrossReconfig(t *testing.T) {
	r, err := NewReactiveTree(10, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0)
	draw := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			v, _ := r.Next()
			if v != next {
				t.Fatalf("value = %d, want %d (leaves=%d)", v, next, r.Leaves())
			}
			next++
		}
	}
	draw(30) // hot: single leaf sees 30 tokens
	if unfolds, _ := r.React(); unfolds == 0 {
		t.Fatal("expected an unfold under load")
	}
	draw(60) // both leaves hot
	r.React()
	if r.Leaves() < 3 {
		t.Fatalf("tree did not keep unfolding: %d leaves", r.Leaves())
	}
	draw(2) // cold window
	if _, folds := r.React(); folds == 0 {
		t.Fatal("expected folds when cold")
	}
	draw(20)
	// Fold everything by repeated cold reactions.
	for i := 0; i < 10 && r.Leaves() > 1; i++ {
		r.React()
	}
	if r.Leaves() != 1 {
		t.Fatalf("tree did not fold back: %d leaves", r.Leaves())
	}
	draw(20)
}

func TestReactiveTreeDepthCapped(t *testing.T) {
	r, err := NewReactiveTree(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 64; i++ {
			r.Next()
		}
		r.React()
	}
	for _, d := range r.Depths() {
		if d > 2 {
			t.Fatalf("leaf at depth %d beyond cap", d)
		}
	}
	if r.Leaves() != 4 {
		t.Fatalf("leaves = %d, want 4 at the cap", r.Leaves())
	}
}

func TestReversedBits(t *testing.T) {
	tests := []struct {
		path string
		want uint64
	}{
		{"", 0}, {"0", 0}, {"1", 1}, {"10", 1}, {"01", 2}, {"11", 3},
	}
	for _, tt := range tests {
		if got := reversedBits(tt.path); got != tt.want {
			t.Errorf("reversedBits(%q) = %d, want %d", tt.path, got, tt.want)
		}
	}
}
