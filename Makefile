GO ?= go
# Packages with real concurrency (goroutine tokens, shared fabrics, rings)
# get a second pass under the race detector.
RACE_PKGS = ./internal/wire/... ./internal/transport/... ./internal/dist/... ./internal/chord/... ./internal/core/... ./internal/obs/... ./internal/match/... ./internal/adapt/... ./internal/launch/... .

.PHONY: check fmt vet build test race bench benchsmoke perfsmoke tracesmoke comparesmoke partsmoke bench-baseline bench-compare

check: fmt vet build test race benchsmoke perfsmoke tracesmoke comparesmoke partsmoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One iteration of every benchmark in the repo: catches benchmarks that no
# longer compile or crash without paying for real measurement runs.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The hot-path benchmarks one iteration each UNDER THE RACE DETECTOR:
# b.RunParallel and the batch/pooled paths race real goroutines, so this
# catches data races the correctness tests' schedules might miss.
perfsmoke:
	$(GO) test -race -bench 'TokenAdaptiveParallel|TokenAdaptiveBatch|TokenDist|TransportDedupParallel|WorkloadBursty|ChordLookupCached|WireCodec|E31AdaptiveBatch' -benchtime 1x -run '^$$' .

# Re-verify the newest checked-in pre/post baseline against itself (first
# run vs last run): an edit that regresses the recorded post numbers — or
# a bad merge of BENCH_9.json — fails the gate. COMPARE_BASELINE points at
# the file; COMPARE_MAXREGRESS is looser than the live-run gate because
# both runs are frozen in the file and only file edits can move them.
COMPARE_BASELINE ?= BENCH_9.json
COMPARE_MAXREGRESS ?= 25
comparesmoke:
	$(GO) run ./cmd/acnbench -compare -maxregress $(COMPARE_MAXREGRESS) $(COMPARE_BASELINE)

# End-to-end trace export: a small sim writes sampled spans as Perfetto
# trace-event JSON, and the validator re-parses the file and checks its
# structural invariants. Catches exporter drift the unit tests can't (the
# actual CLI path, on actual span data).
tracesmoke:
	@tmp="$$(mktemp /tmp/acn-trace-XXXXXX.json)"; \
	$(GO) run ./cmd/acnsim -width 64 -nodes 16 -tokens 200 -trace 8 -tracefile "$$tmp" > /dev/null && \
	$(GO) run ./cmd/acnbench -validatetrace "$$tmp" && rm -f "$$tmp"

# End-to-end multi-process run: the acnnode coordinator spawns two worker
# processes on loopback, injects a burst across them, and exits nonzero
# unless the global count conserves, the summed outputs keep the step
# property, and at least one trace stitched across the two processes; the
# merged Perfetto export is then re-validated through the CLI. This is
# the only gate that exercises real process isolation — separate dedup
# ID spaces, readiness handshakes, the ctl protocol over real sockets.
partsmoke:
	@tmp="$$(mktemp /tmp/acn-part-XXXXXX.json)"; \
	$(GO) run ./cmd/acnnode -coord -width 16 -level 2 -parts 2 -tokens 1024 -traceevery 4 -tracefile "$$tmp" && \
	$(GO) run ./cmd/acnbench -validatetrace "$$tmp" && rm -f "$$tmp"

# Refresh the machine-readable benchmark baseline (BENCH_4.json keeps the
# checked-in PR-4 pre/post numbers; this writes a fresh run to compare
# against — override LABEL to stamp the run, e.g. `make bench-baseline
# LABEL=post`).
LABEL ?= local
bench-baseline:
	$(GO) test -bench 'Token|ChordLookup|SizeEstimate|MaintainFixpoint|EffectiveWidth|SplitMergeCycle|TransportDedup|WorkloadBursty|WireCodec|E31AdaptiveBatch' \
		-benchmem -benchtime 1s -run '^$$' . \
		| $(GO) run ./cmd/acnbench -json -label $(LABEL) > BENCH_$(LABEL).json
	@echo wrote BENCH_$(LABEL).json

# Compare two baseline files and fail on ns/op regressions beyond
# MAXREGRESS percent — the perf-regression CI gate, e.g.
# `make bench-compare OLD=BENCH_pre.json NEW=BENCH_post.json`.
OLD ?= BENCH_pre.json
NEW ?= BENCH_post.json
MAXREGRESS ?= 10
bench-compare:
	$(GO) run ./cmd/acnbench -compare -maxregress $(MAXREGRESS) $(OLD) $(NEW)
