GO ?= go
# Packages with real concurrency (goroutine tokens, shared fabrics, rings)
# get a second pass under the race detector.
RACE_PKGS = ./internal/transport/... ./internal/dist/... ./internal/chord/... ./internal/core/... ./internal/obs/... ./internal/match/... .

.PHONY: check fmt vet build test race bench benchsmoke

check: fmt vet build test race benchsmoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One iteration of every benchmark in the repo: catches benchmarks that no
# longer compile or crash without paying for real measurement runs.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
