#!/bin/sh
# ci.sh — the repository's verification gate, equivalent to `make check`
# for environments without make: formatting, vet, build, full tests, a
# race-detector pass over the concurrent packages, and a one-iteration
# benchmark smoke pass.
#
# Perf regressions are gated separately (baselines take minutes, not
# seconds): `make bench-baseline LABEL=x` records a run, and
# `make bench-compare OLD=a.json NEW=b.json` (acnbench -compare) fails
# when any shared benchmark's ns/op regresses beyond MAXREGRESS percent.
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/wire/... ./internal/transport/... ./internal/dist/... ./internal/chord/... ./internal/core/... ./internal/obs/... ./internal/match/... ./internal/adapt/... ./internal/launch/... .

echo "== benchmark smoke (1 iteration each) =="
go test -bench . -benchtime 1x -run '^$' ./...

echo "== perf smoke (hot-path benchmarks under -race) =="
go test -race -bench 'TokenAdaptiveParallel|TokenAdaptiveBatch|TokenDist|TransportDedupParallel|WorkloadBursty|ChordLookupCached|WireCodec|E31AdaptiveBatch' -benchtime 1x -run '^$' .

echo "== compare smoke (checked-in pre/post baseline gates itself) =="
go run ./cmd/acnbench -compare -maxregress 25 BENCH_9.json

echo "== trace smoke (Perfetto export through the CLI, then validate) =="
tracetmp="$(mktemp /tmp/acn-trace-XXXXXX.json)"
go run ./cmd/acnsim -width 64 -nodes 16 -tokens 200 -trace 8 -tracefile "$tracetmp" > /dev/null
go run ./cmd/acnbench -validatetrace "$tracetmp"
rm -f "$tracetmp"

echo "== partition smoke (2-process acnnode run, conservation + merged trace) =="
parttmp="$(mktemp /tmp/acn-part-XXXXXX.json)"
go run ./cmd/acnnode -coord -width 16 -level 2 -parts 2 -tokens 1024 -traceevery 4 -tracefile "$parttmp"
go run ./cmd/acnbench -validatetrace "$parttmp"
rm -f "$parttmp"

echo "OK"
