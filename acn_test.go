package acn_test

import (
	"testing"
	"time"

	acn "repro"
	"repro/internal/chord"
)

// TestFacadeQuickstart exercises the public API end to end, mirroring the
// package documentation's quick start.
func TestFacadeQuickstart(t *testing.T) {
	net, err := acn.New(acn.Config{Width: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	net.AddNodes(31)
	if _, err := net.MaintainToFixpoint(100); err != nil {
		t.Fatal(err)
	}
	client, err := net.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		tr, err := client.Inject()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Value != i {
			t.Fatalf("value = %d, want %d", tr.Value, i)
		}
	}
	if err := net.CheckStep(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCutNetwork(t *testing.T) {
	n, err := acn.NewCutNetwork(8, acn.LeafCut(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		out, err := n.Inject(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		if out != i%8 {
			t.Fatalf("token %d exited %d", i, out)
		}
	}
	if _, err := acn.NewCutNetwork(8, acn.RootCut()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCluster(t *testing.T) {
	cl, err := acn.NewCluster(8, acn.RootCut())
	if err != nil {
		t.Fatal(err)
	}
	if out, err := cl.Inject(3); err != nil || out != 0 {
		t.Fatalf("inject = %d, %v", out, err)
	}
}

func TestFacadeClassicNetworks(t *testing.T) {
	b, err := acn.NewBitonic(16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := acn.NewPeriodic(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if got := b.Traverse(i % 16); got != i%16 {
			t.Fatalf("bitonic token %d exited %d", i, got)
		}
		if got := p.Traverse(i % 16); got != i%16 {
			t.Fatalf("periodic token %d exited %d", i, got)
		}
	}
}

func TestFacadeMatcher(t *testing.T) {
	m, err := acn.NewMatcher[string, string](8, 1)
	if err != nil {
		t.Fatal(err)
	}
	pch, err := m.Produce("item")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Consume("req"); err != nil {
		t.Fatal(err)
	}
	if got := <-pch; got != "req" {
		t.Fatalf("matched %q", got)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d", m.Pending())
	}
}

func TestFacadeBaselines(t *testing.T) {
	ring := acn.NewRing(1)
	ring.JoinN(8)
	c, err := acn.NewCentralCounter(ring, "ctr")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Next(); v != 0 {
		t.Fatalf("central first value %d", v)
	}
	s, err := acn.NewStaticNetwork(ring, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.Next(0); err != nil || v != 0 {
		t.Fatalf("static first value %d, %v", v, err)
	}
	d, err := acn.NewDiffractingTree(3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Next(); v != 0 {
		t.Fatalf("tree first value %d", v)
	}
}

func TestFacadeReactiveTree(t *testing.T) {
	r, err := acn.NewReactiveTree(8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if v, _ := r.Next(); v != i {
			t.Fatalf("value %d, want %d", v, i)
		}
	}
	r.React()
}

func TestFacadeControllerAndSim(t *testing.T) {
	cl, err := acn.NewCluster(64, acn.RootCut())
	if err != nil {
		t.Fatal(err)
	}
	ring := acn.NewRing(5)
	ring.JoinN(32)
	ctrl := acn.NewController(cl, ring)
	if _, _, err := ctrl.Sync(); err != nil {
		t.Fatal(err)
	}
	if cl.Size() < 2 {
		t.Fatalf("cluster did not expand: %d", cl.Size())
	}

	res, err := acn.Simulate(acn.SimConfig{
		Width: 16, Nodes: 4, ServiceTime: 1, LinkDelay: 0.1,
		ArrivalRate: 0.5, Tokens: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed %d", res.Completed)
	}
}

// TestFacadeOptions builds a cluster and a ring through the functional
// options path: transport, retry, observability, adaptive sizing and
// tracing composed in one constructor call.
func TestFacadeOptions(t *testing.T) {
	reg := acn.NewObsRegistry()
	ctrl := acn.NewAdaptController(acn.AdaptConfig{})
	cl, err := acn.NewCluster(8, acn.RootCut(),
		acn.WithTransport(acn.NewMemTransport()),
		acn.WithRetry(acn.RetryConfig{MaxRetries: 2}),
		acn.WithObs(reg),
		acn.WithAdapt(ctrl),
		acn.WithTrace(1, 128),
	)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]int, 64)
	for i := range ins {
		ins[i] = i % 8
	}
	if _, err := cl.InjectBatch(ins); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckStep(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Histograms["dist.hop.seconds"].Count == 0 {
		t.Fatal("WithObs did not instrument the cluster")
	}
	if len(reg.TraceSpans()) == 0 {
		t.Fatal("WithTrace did not retain spans")
	}

	ringReg := acn.NewObsRegistry()
	ring := acn.NewRing(7,
		acn.WithTransport(acn.NewMemTransport()),
		acn.WithRetry(acn.RetryConfig{MaxRetries: 1}),
		acn.WithObs(ringReg),
	)
	ids := ring.JoinN(16)
	if _, _, err := ring.Lookup(ids[0], chord.Hash("y")); err != nil {
		t.Fatal(err)
	}
	if ringReg.Snapshot().Histograms["chord.lookup.hops"].Count == 0 {
		t.Fatal("WithObs did not instrument the ring")
	}
}

// TestFacadeFaultyTransport runs a cluster and a ring over the public
// fault-injection API: counting stays exact despite message loss.
func TestFacadeFaultyTransport(t *testing.T) {
	f := acn.NewFaultyTransport(acn.FaultConfig{
		Seed:          2,
		DropRate:      0.05,
		DupRate:       0.05,
		LatencyJitter: 10 * time.Microsecond,
	})
	retry := acn.RetryConfig{Timeout: 500 * time.Microsecond, MaxRetries: 12, Backoff: 20 * time.Microsecond}
	cl, err := acn.NewClusterOn(8, acn.RootCut(), f, retry)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		out, err := cl.Inject(i % 8)
		if err != nil {
			t.Fatal(err)
		}
		if out != i%8 {
			t.Fatalf("token %d exited %d, want %d", i, out, i%8)
		}
	}
	if err := cl.CheckStep(); err != nil {
		t.Fatal(err)
	}
	st, _ := cl.NetStats()
	if st.Dropped == 0 {
		t.Fatalf("faults not exercised: %+v", st)
	}

	ring := acn.NewRingOn(3, acn.NewFaultyTransport(acn.FaultConfig{Seed: 4, DropRate: 0.1}), retry)
	ids := ring.JoinN(32)
	if _, _, err := ring.Lookup(ids[0], chord.Hash("x")); err != nil {
		t.Fatal(err)
	}
}
