package acn_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"time"

	acn "repro"
	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/cutnet"
	"repro/internal/dist"
	"repro/internal/estimate"
	"repro/internal/experiments"
	"repro/internal/transport"
	"repro/internal/transport/tcpnet"
	"repro/internal/tree"
	"repro/internal/wire"
	"repro/internal/workload"
)

// benchExperiment runs one reproduction experiment per iteration (tables
// are what the experiments produce; the bench measures the cost of
// regenerating them). With -v the first iteration's table is printed.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id, experiments.Options{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				b.Fatal(err)
			}
		} else if i == 0 {
			if _, err := t.WriteTo(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1FullExpansion(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2PhiAndCuts(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3Figure3(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4EveryCutCounts(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5DepthBound(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6WidthBound(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7SizeEstimation(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8LevelEstimates(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9ComponentLevels(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10ComponentsPerNode(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11WidthDepthScaling(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12Churn(b *testing.B)             { benchExperiment(b, "E12") }
func BenchmarkE13RoutingEfficiency(b *testing.B) { benchExperiment(b, "E13") }
func BenchmarkE14InputLookup(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15Comparison(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16Matching(b *testing.B)          { benchExperiment(b, "E16") }
func BenchmarkE17Erratum(b *testing.B)           { benchExperiment(b, "E17") }
func BenchmarkE18AblationNoMerge(b *testing.B)   { benchExperiment(b, "E18") }
func BenchmarkE19AblationEstimator(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20Throughput(b *testing.B)        { benchExperiment(b, "E20") }

// --- Micro-benchmarks of the hot operations ---

func BenchmarkTokenRootComponent(b *testing.B) {
	n, err := cutnet.NewRootOnly(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Inject(rng.Intn(64)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTokenFullyExpanded(b *testing.B) {
	for _, w := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			n, err := cutnet.New(w, tree.LeafCut(w))
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Inject(rng.Intn(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTokenAdaptive(b *testing.B) {
	for _, nodes := range []int{16, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			net, err := core.New(core.Config{Width: 1 << 12, Seed: 1, InitialNodes: nodes})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.MaintainToFixpoint(200); err != nil {
				b.Fatal(err)
			}
			client, err := net.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Inject(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTokenAdaptiveBatch injects bursts of 128 tokens per
// Client.InjectBatch call, the burst landing on one input wire per batch
// (the workload generators' bursty arrival shape, rotating wires across
// batches). One op is one token, so ns/op compares directly against
// BenchmarkTokenAdaptive: the gap is the snapshot/entry/group
// amortization of the batched pipeline.
func BenchmarkTokenAdaptiveBatch(b *testing.B) {
	for _, nodes := range []int{16, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			net, err := core.New(core.Config{Width: 1 << 12, Seed: 1, InitialNodes: nodes})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.MaintainToFixpoint(200); err != nil {
				b.Fatal(err)
			}
			client, err := net.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			const batch = 128
			ins := make([]int, batch)
			b.ResetTimer()
			for done := 0; done < b.N; done += batch {
				n := batch
				if left := b.N - done; left < n {
					n = left
				}
				wire := rng.Intn(1 << 12)
				for i := 0; i < n; i++ {
					ins[i] = wire
				}
				if _, err := client.InjectBatch(ins[:n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTokenAdaptiveBatchParallel runs batched injection from
// concurrent clients: the lock-free group claims (TryStepN) mean
// concurrent batches contend only on the atomic component words, one CAS
// per group instead of one per token. One op is one token.
func BenchmarkTokenAdaptiveBatchParallel(b *testing.B) {
	for _, nodes := range []int{16, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			net, err := core.New(core.Config{Width: 1 << 12, Seed: 1, InitialNodes: nodes})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.MaintainToFixpoint(200); err != nil {
				b.Fatal(err)
			}
			var gid atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client, err := net.NewClient()
				if err != nil {
					b.Error(err)
					return
				}
				rng := rand.New(rand.NewSource(100 + gid.Add(1)))
				const batch = 128
				ins := make([]int, batch)
				for pb.Next() {
					// pb.Next counts single tokens; fill the batch and charge
					// the remaining 127 against the loop.
					n := 1
					for n < batch && pb.Next() {
						n++
					}
					wire := rng.Intn(1 << 12)
					for i := 0; i < n; i++ {
						ins[i] = wire
					}
					if _, err := client.InjectBatch(ins[:n]); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkTokenAdaptiveParallel injects from concurrent clients (one per
// worker goroutine), exercising the lock-free balancer fetch-add, the
// epoch-snapshot topology, and the lookup/neighbor caches under
// contention. One op is one token.
func BenchmarkTokenAdaptiveParallel(b *testing.B) {
	for _, nodes := range []int{16, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			net, err := core.New(core.Config{Width: 1 << 12, Seed: 1, InitialNodes: nodes})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.MaintainToFixpoint(200); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client, err := net.NewClient()
				if err != nil {
					b.Error(err)
					return
				}
				for pb.Next() {
					if _, err := client.Inject(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkTokenDist measures the message-level cluster: one op is one
// token traversing the transport with pooled endpoints.
func BenchmarkTokenDist(b *testing.B) {
	w := 64
	cl, err := distCluster(w)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Inject(rng.Intn(w)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenDistBatch amortizes endpoint setup across a whole batch.
// ns/op is still per token (b.N tokens total).
func BenchmarkTokenDistBatch(b *testing.B) {
	w := 64
	cl, err := distCluster(w)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const batch = 64
	ins := make([]int, batch)
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		for i := 0; i < n; i++ {
			ins[i] = rng.Intn(w)
		}
		if _, err := cl.InjectBatch(ins[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

func distCluster(w int) (*dist.Cluster, error) {
	cl, err := dist.NewRootOnly(w)
	if err != nil {
		return nil, err
	}
	if err := cl.Split(""); err != nil {
		return nil, err
	}
	return cl, nil
}

// BenchmarkChordLookupCached measures the churn-invalidated lookup cache
// on a stable ring (the warm path tokens hit between membership changes).
func BenchmarkChordLookupCached(b *testing.B) {
	ring := acn.NewRing(1)
	ids := ring.JoinN(1024)
	cache := chord.NewLookupCache(ring, 4096)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := ids[rng.Intn(len(ids))]
		if _, _, _, err := cache.Owner(from, fmt.Sprint(i%512)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitMergeCycle(b *testing.B) {
	n, err := cutnet.NewRootOnly(1 << 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if _, err := n.Inject(rng.Intn(1 << 10)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Split(""); err != nil {
			b.Fatal(err)
		}
		if err := n.Merge(""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChordLookup(b *testing.B) {
	ring := acn.NewRing(1)
	ids := ring.JoinN(1024)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := ids[rng.Intn(len(ids))]
		if _, _, err := ring.Lookup(from, chord.Hash(fmt.Sprint(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSizeEstimate(b *testing.B) {
	ring := acn.NewRing(3)
	ids := ring.JoinN(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate.SizeEstimate(ring, ids[i%len(ids)], estimate.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaintainFixpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := core.New(core.Config{Width: 1 << 12, Seed: int64(i), InitialNodes: 64})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.MaintainToFixpoint(200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEffectiveWidth(b *testing.B) {
	net, err := core.New(core.Config{Width: 1 << 12, Seed: 5, InitialNodes: 128})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.MaintainToFixpoint(200); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.EffectiveWidth(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE21Generality(b *testing.B) { benchExperiment(b, "E21") }

func BenchmarkE22AdaptivityAxes(b *testing.B) { benchExperiment(b, "E22") }

func BenchmarkE23Saturation(b *testing.B) { benchExperiment(b, "E23") }

func BenchmarkE24FaultyTransport(b *testing.B) { benchExperiment(b, "E24") }

func BenchmarkE26Multicore(b *testing.B) { benchExperiment(b, "E26") }

func BenchmarkE27BatchedInjection(b *testing.B) { benchExperiment(b, "E27") }

func BenchmarkE28WireTransport(b *testing.B) { benchExperiment(b, "E28") }

func BenchmarkE29TraceBreakdown(b *testing.B) { benchExperiment(b, "E29") }

func BenchmarkE30RPCFastPath(b *testing.B) { benchExperiment(b, "E30") }

func BenchmarkE31AdaptiveBatch(b *testing.B) { benchExperiment(b, "E31") }

func BenchmarkE32Partitioned(b *testing.B) { benchExperiment(b, "E32") }

// BenchmarkE25Observability prints its table unconditionally (not just
// under -v): the lookup hop-count distribution and per-token latency
// percentiles across N are the observability layer's acceptance output.
func BenchmarkE25Observability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run("E25", experiments.Options{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTransportDedupParallel measures the striped at-most-once table
// under sender concurrency: every logical call is sent twice (the retry
// pattern the dedup table exists for), so half the Sends execute the
// handler and half are served from a stripe's call cache. Before striping,
// all goroutines serialized on one endpoint mutex here.
func BenchmarkTransportDedupParallel(b *testing.B) {
	mem := transport.NewMem()
	if err := mem.Bind("ctr", func(transport.Request) (any, error) { return nil, nil }); err != nil {
		b.Fatal(err)
	}
	mem.EnableDedup()
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := next.Add(1)
			if _, err := mem.Send(transport.Request{ID: id, To: "ctr"}, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := mem.Send(transport.Request{ID: id, To: "ctr"}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkloadBursty drives bursty arrivals through the adaptive
// network via the workload runner — batch=1 is the per-call path, larger
// batches hand each burst to InjectBatch. ns/op is per token.
func BenchmarkWorkloadBursty(b *testing.B) {
	for _, batch := range []int{1, 128} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			n, err := core.New(core.Config{Width: 1 << 12, Seed: 1, InitialNodes: 16})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := n.MaintainToFixpoint(200); err != nil {
				b.Fatal(err)
			}
			client, err := n.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			arrivals := workload.NewBursty(n.Width(), 128, 7)
			events := []workload.Event{{Kind: workload.EventInject, Count: b.N}}
			b.ResetTimer()
			if _, err := workload.RunBatched(n, client, events, arrivals, batch); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// distClusterTCP mirrors distCluster but runs the engine over a live TCP
// loopback fabric, so every RPC pays the wire codec and a socket hop.
func distClusterTCP(b *testing.B, w int) *dist.Cluster {
	b.Helper()
	tn, err := tcpnet.New(tcpnet.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = tn.Close() })
	cl, err := dist.NewOn(w, tree.RootCut(), tn, transport.RetryConfig{
		Timeout:    25 * time.Millisecond,
		MaxRetries: 8,
		Backoff:    100 * time.Microsecond,
		BackoffCap: 2 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.Split(""); err != nil {
		b.Fatal(err)
	}
	return cl
}

// BenchmarkTokenDistTCP is BenchmarkTokenDist over TCP loopback: one
// arrive RPC per component visit per token, each through the codec and a
// pooled socket. The gap to BenchmarkTokenDist is the price of a real
// wire; the gap to BenchmarkTokenDistTCPBatch is what group messages
// amortize away.
func BenchmarkTokenDistTCP(b *testing.B) {
	w := 64
	cl := distClusterTCP(b, w)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Inject(rng.Intn(w)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenDistTCPParallel is BenchmarkTokenDistTCP with many
// concurrent senders: 8x GOMAXPROCS injector goroutines share the same
// pooled TCP fabric, so connection write contention, reply demultiplexing
// and handler dispatch are all on the measured path — the workload the
// coalesced-write and pooled-frame fast path exists for. ns/op is per
// token across all senders.
func BenchmarkTokenDistTCPParallel(b *testing.B) {
	w := 64
	cl := distClusterTCP(b, w)
	var seed atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(8) // >=8 senders even on a single-core host
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			if _, err := cl.Inject(rng.Intn(w)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkTokenDistTCPBatch drives the same TCP fabric through the group
// wire message: one group-arrive RPC per component visit per batch. ns/op
// is still per token (b.N tokens total).
func BenchmarkTokenDistTCPBatch(b *testing.B) {
	w := 64
	cl := distClusterTCP(b, w)
	rng := rand.New(rand.NewSource(1))
	const batch = 64
	ins := make([]int, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		for i := 0; i < n; i++ {
			ins[i] = rng.Intn(w)
		}
		if _, err := cl.InjectBatch(ins[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireCodec round-trips one group-arrive request envelope (16
// tokens) through encode, framing and decode — the serialization cost a
// TCP RPC pays on top of the in-process fabric.
func BenchmarkWireCodec(b *testing.B) {
	wires := make([]int, 16)
	seqs := make([]uint64, 16)
	for i := range wires {
		wires[i] = i * 3 % 64
		seqs[i] = uint64(i + 1)
	}
	req := transport.Request{
		ID: 7, From: "t:1", To: "c:0110#2", Kind: wire.KindGroupArrive,
		Body: wire.GroupArrive{Token: "t:1", Wires: wires, Seqs: seqs},
	}
	enc := wire.NewEncoder(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Reset()
		if err := wire.EncodeRequest(enc, uint64(i), req); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodeFrame(enc.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}
